// Package milp solves 0-1 and general mixed integer linear programs by
// LP-based branch and bound on top of package lp. Together the two
// packages replace the LINDO solver used in Sutanthavibul, Shragowitz and
// Rosen (DAC 1990): the floorplanning subproblems of the paper are MILPs
// with a few hundred continuous variables and up to a few hundred 0-1
// variables, which this solver handles to proven optimality at the
// subproblem sizes (10-12 modules) the paper recommends.
package milp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"afp/internal/lp"
	"afp/internal/obs"
)

// intTol is the integrality tolerance: a value within intTol of an integer
// is considered integral.
const intTol = 1e-6

// Model couples an LP relaxation with the set of integrality constraints.
type Model struct {
	P    *lp.Problem
	Ints []lp.VarID // variables required to take integer values
}

// NewModel returns a model over problem p with no integer variables yet.
func NewModel(p *lp.Problem) *Model { return &Model{P: p} }

// AddBinary declares a new binary variable on the underlying problem and
// registers it as integer.
func (m *Model) AddBinary(name string, cost float64) lp.VarID {
	v := m.P.AddVariable(name, 0, 1, cost)
	m.Ints = append(m.Ints, v)
	return v
}

// MarkInteger registers an existing variable as integer-constrained.
func (m *Model) MarkInteger(v lp.VarID) { m.Ints = append(m.Ints, v) }

// Branching selects the variable-selection rule of the search.
type Branching int

// Branching rules.
const (
	// MostFractional branches on the integer variable whose LP value is
	// closest to 0.5 away from an integer.
	MostFractional Branching = iota
	// PseudoCost branches on the variable with the best observed objective
	// degradation history, falling back to MostFractional until history
	// accumulates.
	PseudoCost
)

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; 0 means 200000.
	MaxNodes int
	// TimeLimit stops the search after the given duration; 0 means none.
	TimeLimit time.Duration
	// AbsGap terminates when bestBound >= incumbent - AbsGap. Defaults to 1e-6.
	AbsGap float64
	// Workers sets the number of branch-and-bound worker goroutines.
	// 0 (the default) means runtime.GOMAXPROCS(0); 1 runs the exact
	// serial search of earlier versions, bit for bit. At Workers > 1 the
	// search explores subtrees concurrently from a shared best-bound node
	// pool (see parallel.go): it proves the same optimum and the same
	// bound, but may return a different optimal assignment when several
	// exist, and Nodes/LPIters vary run to run.
	Workers int
	// Branching selects the branching rule.
	Branching Branching
	// Presolve runs interval-arithmetic bound propagation
	// (lp.PropagateBounds) on a private clone of the problem before the
	// search, tightening root bounds and fixing implied integers. The
	// feasible set and optimum are unchanged; the caller's Problem is not
	// modified. One presolve.done event reports the reductions when Obs is
	// set.
	Presolve bool
	// Incumbent optionally provides a full variable assignment known (or
	// hoped) to be feasible; integer variables are fixed to its (rounded)
	// values and the continuous part is re-optimized to seed the search
	// with an upper bound.
	Incumbent []float64
	// LP tunes the relaxation solver.
	LP lp.Options
	// RootRounding enables a cheap dive heuristic at the root: round the
	// relaxation's integer values and re-solve the continuous part.
	RootRounding bool
	// ColdStart disables the warm-started dual simplex and solves every
	// node's relaxation from scratch with the cold solver. Warm starting
	// is the default: each node re-solve repairs the parent basis with a
	// handful of dual pivots on the sparse revised simplex core
	// (lp.Incremental), allocation-free in steady state, instead of
	// running a full solve per node. The warm path requires finite bounds
	// on improving columns (box-bounded problems, which floorplanning
	// relaxations always are) and silently falls back to cold solves when
	// that precondition fails, so ColdStart is only needed to force the
	// fallback — for differential testing or to measure the warm-start
	// speedup (see BenchmarkAblationWarmStart{On,Off}).
	ColdStart bool
	// WarmStart is deprecated and ignored: warm-started node re-solves
	// are now the default. Use ColdStart to opt out.
	WarmStart bool
	// External optionally supplies an externally-proven feasible objective
	// value (in the problem's original sense) together with a label naming
	// its producer, e.g. "portfolio:anneal". The search polls it at node
	// boundaries and prunes any subtree whose LP bound cannot beat the
	// external value, exactly as it prunes against its own incumbent; the
	// hook must be safe for concurrent use (parallel workers poll it under
	// the pool lock) and should be a cheap mutex-guarded read. When the
	// search exhausts without an internal incumbent at least as good as
	// the external objective, the result is StatusDominated: nothing in
	// this model beats the external solution (within AbsGap), and
	// Result.IncumbentSource carries the external label.
	External func() (obj float64, source string, ok bool)
	// Obs receives branch-and-bound telemetry: node open/close/prune
	// events, incumbent updates, periodic progress probes and a final
	// search summary. Nil (the default) disables instrumentation at no
	// cost. To also trace every node's LP solve, set Obs on the LP
	// options as well.
	Obs *obs.Observer
	// ProgressEvery emits an obs progress probe every that many explored
	// nodes; 0 means 512. Ignored without Obs.
	ProgressEvery int
}

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	StatusOptimal    Status = iota // incumbent proven optimal (within AbsGap)
	StatusFeasible                 // incumbent found, limit hit before proof
	StatusInfeasible               // no integer-feasible point exists
	StatusUnbounded                // relaxation unbounded
	StatusLimit                    // limit hit with no incumbent
	// StatusDominated: the search exhausted under an Options.External
	// cutoff without beating it — the external solution is proven at
	// least as good as anything in this model (within AbsGap).
	StatusDominated
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusDominated:
		return "dominated"
	default:
		return "limit"
	}
}

// Result is the outcome of a branch-and-bound search.
type Result struct {
	Status    Status
	Objective float64   // objective of the incumbent in the original sense
	X         []float64 // incumbent assignment (valid unless StatusLimit/Infeasible)
	Nodes     int       // branch-and-bound nodes explored
	LPIters   int       // total simplex iterations across all node solves
	BestBound float64   // proven bound on the optimum (original sense)
	// DualPivots and Refactorizations break down the sparse-simplex LP
	// effort: dual pivots across node solves (a warm re-solve repairing a
	// parent basis typically needs a handful; a cold solve on the sparse
	// engine pays the full count) and how often the LU factorization was
	// rebuilt (eta file full, numerical trouble, or a cloned worker basis
	// coming online). Both are zero when every solve took the dense
	// primal path (the lpdense build, or problems the sparse engine
	// declines).
	DualPivots       int
	Refactorizations int
	// IncumbentSource names who owns the best known solution: "bb" when
	// the search (or its hint) produced X, or the Options.External label
	// (e.g. "portfolio:anneal") on StatusDominated results. Empty when no
	// incumbent is known at all.
	IncumbentSource string
}

// Gap returns the relative MIP gap |Objective - BestBound| /
// max(1e-10, |Objective|). Without an incumbent, or without a finite
// proven bound, the gap is +Inf: the division is never evaluated when no
// feasible solution was found, so a zero Objective placeholder cannot
// manufacture a huge but meaningless percentage. An incumbent whose
// objective matches its bound within 1e-12 reports exactly zero, which
// keeps proven-optimal solves with a zero objective out of the same trap.
func (r *Result) Gap() float64 {
	if r.X == nil || math.IsInf(r.BestBound, 0) || math.IsNaN(r.BestBound) {
		return math.Inf(1)
	}
	diff := math.Abs(r.Objective - r.BestBound)
	if diff <= 1e-12 {
		return 0
	}
	return diff / math.Max(1e-10, math.Abs(r.Objective))
}

// String is a one-line solve summary: status, incumbent objective,
// proven bound, relative gap and search effort. Without an incumbent the
// objective and gap are omitted (only the proven bound is shown, when
// one exists).
func (r *Result) String() string {
	if r.X == nil {
		if !math.IsInf(r.BestBound, 0) && !math.IsNaN(r.BestBound) {
			return fmt.Sprintf("status: %s bound: %g nodes: %d lp-iters: %d",
				r.Status, r.BestBound, r.Nodes, r.LPIters)
		}
		return fmt.Sprintf("status: %s nodes: %d lp-iters: %d", r.Status, r.Nodes, r.LPIters)
	}
	gap := "inf"
	if g := r.Gap(); !math.IsInf(g, 0) {
		gap = fmt.Sprintf("%.4g%%", 100*g)
	}
	return fmt.Sprintf("status: %s objective: %g bound: %g gap: %s nodes: %d lp-iters: %d",
		r.Status, r.Objective, r.BestBound, gap, r.Nodes, r.LPIters)
}

// node is one open subproblem: the integer-variable bounds along its path.
type node struct {
	lo, hi    []float64 // bounds for m.Ints, in order
	bound     float64   // parent LP bound (minimize sense), -inf at root
	depth     int
	branchVar int  // index into m.Ints of the variable branched to create this node; -1 at root
	branchUp  bool // direction of that branch
	id        int  // creation-order id for telemetry (root = 1)
	owner     int  // 1-based id of the worker that created it; 0 for root/serial
}

type solver struct {
	m        *Model
	opt      Options
	ctx      context.Context
	work     *lp.Problem
	inc      *lp.Incremental // warm-started relaxation solver; nil = cold path
	sign     float64         // +1 minimize, -1 maximize: node objectives are sign*obj
	deadline time.Time

	incumbent    []float64
	incumbentObj float64 // minimize sense
	haveInc      bool

	extObj    float64 // best external objective seen (minimize sense)
	extSource string
	haveExt   bool

	nodes      int
	lpIters    int
	dualPivots int // dual simplex pivots across warm node re-solves
	refactors  int // basis refactorizations across warm node re-solves

	// telemetry
	o        *obs.Observer
	start    time.Time
	pushed   int // nodes created (node.open events)
	prunedN  int // nodes discarded without an LP solve
	probeGap int // nodes between progress probes

	// pseudo-cost history
	psUp, psDown   []float64
	psUpN, psDownN []int
}

// emitOpen registers a freshly created node and reports it. It must be
// called exactly once per node so that the trace invariant
// opened == closed + pruned + open-at-exit holds.
func (s *solver) emitOpen(n *node) {
	s.pushed++
	n.id = s.pushed
	if s.o.Enabled() {
		s.o.Emit(obs.Event{
			Kind: obs.KindNodeOpen, Node: n.id, Depth: n.depth,
			Bound: s.sign * n.bound, BranchVar: n.branchVar,
		})
	}
}

// emitClose reports a node fully processed after its LP solve.
func (s *solver) emitClose(n *node, detail string, obj float64) {
	if s.o.Enabled() {
		s.o.Emit(obs.Event{
			Kind: obs.KindNodeClose, Node: n.id, Depth: n.depth,
			Detail: detail, Obj: s.sign * obj,
		})
	}
}

// emitProgress reports the periodic search probe: explored/open counts,
// incumbent, proven bound and relative gap.
func (s *solver) emitProgress(stack []*node, curObj float64) {
	lb := math.Min(minOpenBound(stack), curObj)
	e := obs.Event{
		Kind: obs.KindProgress, Nodes: s.nodes, Open: len(stack),
		Iters: s.lpIters, Bound: s.sign * lb,
	}
	if s.haveInc {
		e.Obj = s.sign * s.incumbentObj
		e.Gap = relGap(s.incumbentObj, lb)
	} else {
		e.Gap = math.Inf(1)
	}
	s.o.Emit(e)
}

// relGap is the relative MIP gap between an incumbent and a bound, both
// in minimize sense.
func relGap(inc, bound float64) float64 {
	if math.IsInf(bound, 0) || math.IsInf(inc, 0) {
		return math.Inf(1)
	}
	return math.Abs(inc-bound) / math.Max(1e-10, math.Abs(inc))
}

// Solve runs branch and bound and returns the result. The model's Problem
// is not modified.
func Solve(m *Model, opt Options) *Result {
	return SolveCtx(context.Background(), m, opt)
}

// SolveCtx is Solve under a context. Cancellation (or a context
// deadline) stops the search at the next node boundary — and, inside a
// node, aborts the running LP solve within a few pivots — returning the
// best incumbent found so far with StatusFeasible, or StatusLimit when
// none exists. The proven bound and Gap remain meaningful on such
// partial results, which is what deadline-bounded service solves report.
func SolveCtx(ctx context.Context, m *Model, opt Options) *Result {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 200000
	}
	if opt.AbsGap <= 0 {
		opt.AbsGap = 1e-6
	}
	if opt.ProgressEvery <= 0 {
		opt.ProgressEvery = 512
	}
	if opt.Presolve {
		q := m.P.Clone()
		var tightened, fixed int
		opt.Obs.Do(ctx, "presolve", obs.SpanAttrs{Detail: "propagate"}, func(context.Context) {
			tightened, fixed = q.PropagateBounds(m.Ints, 0)
		})
		if opt.Obs.Enabled() {
			opt.Obs.Emit(obs.Event{
				Kind: obs.KindPresolve, Detail: "propagate",
				Tightened: tightened, Fixed: fixed,
			})
		}
		m = &Model{P: q, Ints: m.Ints}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var res *Result
	opt.Obs.Do(ctx, "bb", obs.SpanAttrs{Worker: workers}, func(ctx context.Context) {
		if workers > 1 && len(m.Ints) > 0 {
			res = solveParallel(ctx, m, opt, workers)
			return
		}
		s := &solver{
			m:            m,
			opt:          opt,
			ctx:          ctx,
			work:         m.P.Clone(),
			sign:         1,
			incumbentObj: math.Inf(1),
			o:            opt.Obs,
			start:        time.Now(),
			probeGap:     opt.ProgressEvery,
			psUp:         make([]float64, len(m.Ints)),
			psDown:       make([]float64, len(m.Ints)),
			psUpN:        make([]int, len(m.Ints)),
			psDownN:      make([]int, len(m.Ints)),
		}
		if m.P.Maximizing() {
			s.sign = -1
		}
		if opt.TimeLimit > 0 {
			s.deadline = time.Now().Add(opt.TimeLimit)
		}
		if !opt.ColdStart {
			if inc, err := lp.NewIncremental(s.work, opt.LP); err == nil {
				s.inc = inc
			}
		}
		res = s.run()
	})
	return res
}

func (s *solver) timeUp() bool {
	if s.ctx.Err() != nil {
		return true
	}
	return !s.deadline.IsZero() && time.Now().After(s.deadline)
}

// pollExternal refreshes the externally-shared incumbent objective.
func (s *solver) pollExternal() {
	if s.opt.External == nil {
		return
	}
	if obj, src, ok := s.opt.External(); ok {
		v := s.sign * obj
		if !s.haveExt || v < s.extObj {
			s.extObj, s.extSource, s.haveExt = v, src, true
		}
	}
}

// cutoff returns the pruning cutoff in minimize sense: the tighter of
// the internal incumbent and the external objective.
func (s *solver) cutoff() (float64, bool) {
	switch {
	case s.haveInc && s.haveExt:
		return math.Min(s.incumbentObj, s.extObj), true
	case s.haveInc:
		return s.incumbentObj, true
	case s.haveExt:
		return s.extObj, true
	}
	return 0, false
}

// setIntBounds applies a node's integer bounds to the working problem.
func (s *solver) setIntBounds(n *node) {
	if s.inc != nil {
		for k, v := range s.m.Ints {
			s.inc.SetBounds(v, n.lo[k], n.hi[k])
		}
		return
	}
	for k, v := range s.m.Ints {
		s.work.SetBounds(v, n.lo[k], n.hi[k])
	}
}

// solveLP solves the working problem and returns the solution plus the
// node bound in minimize sense. On the warm path the returned Solution
// (and its X) is the incremental solver's reused buffer: it is only
// valid until the next solveLP call, so values needed across solves
// must be copied out first.
func (s *solver) solveLP() (*lp.Solution, float64) {
	var sol *lp.Solution
	var err error
	if s.inc != nil {
		sol, err = s.inc.SolveCtxReuse(s.ctx)
	} else {
		sol, err = s.work.SolveCtx(s.ctx, s.opt.LP)
	}
	if err != nil {
		return nil, math.Inf(1)
	}
	s.lpIters += sol.Iterations
	s.dualPivots += sol.DualPivots
	s.refactors += sol.Refactorizations
	return sol, s.sign * sol.Objective
}

// tryIncumbentHint fixes integers to the hint's rounded values and
// re-optimizes the continuous part.
func (s *solver) tryIncumbentHint(hint []float64, rootLo, rootHi []float64) {
	n := &node{lo: append([]float64(nil), rootLo...), hi: append([]float64(nil), rootHi...)}
	ok := true
	for k, v := range s.m.Ints {
		val := math.Round(hint[v])
		if val < rootLo[k]-intTol || val > rootHi[k]+intTol {
			ok = false
			break
		}
		n.lo[k], n.hi[k] = val, val
	}
	if !ok {
		return
	}
	s.setIntBounds(n)
	sol, obj := s.solveLP()
	if sol != nil && sol.Status == lp.StatusOptimal && obj < s.incumbentObj {
		s.incumbent = append([]float64(nil), sol.X...)
		s.incumbentObj = obj
		s.haveInc = true
		if s.o.Enabled() {
			// Node 0 marks incumbents from hints/dives, outside the tree.
			s.o.Emit(obs.Event{Kind: obs.KindIncumbent, Obj: s.sign * obj, Nodes: s.nodes})
		}
	}
}

func (s *solver) run() *Result {
	ints := s.m.Ints
	rootLo := make([]float64, len(ints))
	rootHi := make([]float64, len(ints))
	for k, v := range ints {
		lo, hi := s.m.P.Bounds(v)
		rootLo[k] = math.Ceil(lo - intTol)
		rootHi[k] = math.Floor(hi + intTol)
	}

	if s.opt.Incumbent != nil {
		s.tryIncumbentHint(s.opt.Incumbent, rootLo, rootHi)
	}

	root := &node{lo: rootLo, hi: rootHi, bound: math.Inf(-1), branchVar: -1}
	s.emitOpen(root)
	stack := []*node{root}
	bestOpenBound := math.Inf(-1)
	hitLimit := false

	for len(stack) > 0 {
		if s.nodes >= s.opt.MaxNodes || s.timeUp() {
			hitLimit = true
			// The tightest unexplored bound limits what we can still prove.
			bestOpenBound = minOpenBound(stack)
			break
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.pollExternal()

		// Prune by parent bound before paying for an LP solve.
		if cut, ok := s.cutoff(); ok && n.bound >= cut-s.opt.AbsGap {
			s.prunedN++
			if s.o.Enabled() {
				s.o.Emit(obs.Event{
					Kind: obs.KindNodePrune, Node: n.id, Depth: n.depth,
					Bound: s.sign * n.bound,
				})
			}
			continue
		}

		s.nodes++
		if s.o.Enabled() && s.nodes%s.probeGap == 0 {
			s.emitProgress(stack, n.bound)
		}
		s.setIntBounds(n)
		sol, obj := s.solveLP()
		if sol == nil {
			if s.timeUp() {
				// Cancellation aborted this node's LP mid-solve. Its parent
				// bound is still unexplored mass, so fold it into the proven
				// bound before stopping.
				s.emitClose(n, "cancelled", n.bound)
				hitLimit = true
				bestOpenBound = math.Min(minOpenBound(stack), n.bound)
				break
			}
			s.emitClose(n, "lperror", n.bound)
			continue
		}
		switch sol.Status {
		case lp.StatusInfeasible:
			s.emitClose(n, "infeasible", n.bound)
			continue
		case lp.StatusUnbounded:
			s.emitClose(n, "unbounded", n.bound)
			if s.nodes == 1 {
				return s.result(StatusUnbounded, bestOpenBound, len(stack))
			}
			continue
		case lp.StatusIterLimit:
			// Bound untrusted; treat as -inf and branch on the best guess.
			obj = n.bound
		}
		if n.branchVar >= 0 && !math.IsInf(n.bound, -1) {
			s.recordPseudo(n.branchVar, n.branchUp, obj-n.bound)
		}
		if cut, ok := s.cutoff(); ok && obj >= cut-s.opt.AbsGap {
			s.emitClose(n, "bound", obj)
			continue
		}

		frac := s.pickBranchVar(sol.X, n)
		if frac < 0 {
			// Integer feasible.
			if obj < s.incumbentObj {
				s.incumbent = append([]float64(nil), sol.X...)
				s.incumbentObj = obj
				s.haveInc = true
				if s.o.Enabled() {
					s.o.Emit(obs.Event{
						Kind: obs.KindIncumbent, Node: n.id, Depth: n.depth,
						Obj: s.sign * obj, Nodes: s.nodes,
					})
				}
			}
			s.emitClose(n, "integer", obj)
			continue
		}

		// Capture the branch value before the rounding dive: the hint's
		// re-solve overwrites the warm solver's reused X buffer.
		x := sol.X[ints[frac]]
		if s.nodes == 1 && s.opt.RootRounding {
			s.tryIncumbentHint(sol.X, rootLo, rootHi)
		}
		fl := math.Floor(x)

		down := &node{lo: cloneF(n.lo), hi: cloneF(n.hi), bound: obj, depth: n.depth + 1, branchVar: frac}
		down.hi[frac] = fl
		up := &node{lo: cloneF(n.lo), hi: cloneF(n.hi), bound: obj, depth: n.depth + 1, branchVar: frac, branchUp: true}
		up.lo[frac] = fl + 1
		s.emitClose(n, "branched", obj)
		s.emitOpen(down)
		s.emitOpen(up)

		// Dive toward the nearest integer first (pushed last = popped first).
		if x-fl < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}

	if hitLimit {
		if s.haveInc {
			return s.result(StatusFeasible, bestOpenBound, len(stack))
		}
		return s.result(StatusLimit, bestOpenBound, len(stack))
	}
	// Exhausted. Subtrees were pruned against min(incumbent, external), so
	// when the external objective is the tighter of the two nothing in
	// this model beats it: the external solution dominates the search.
	if s.haveExt && (!s.haveInc || s.extObj < s.incumbentObj) {
		return s.result(StatusDominated, s.extObj, len(stack))
	}
	if s.haveInc {
		return s.result(StatusOptimal, s.incumbentObj, len(stack))
	}
	return s.result(StatusInfeasible, bestOpenBound, len(stack))
}

func minOpenBound(stack []*node) float64 {
	best := math.Inf(1)
	for _, n := range stack {
		if n.bound < best {
			best = n.bound
		}
	}
	return best
}

func cloneF(xs []float64) []float64 { return append([]float64(nil), xs...) }

// pickBranchVar returns the index (into m.Ints) of the branching variable,
// or -1 when all integer variables are integral. Variables already fixed
// by the node's bounds are never selected.
func (s *solver) pickBranchVar(x []float64, n *node) int {
	best := -1
	bestScore := intTol
	for k, v := range s.m.Ints {
		//vet:allow toleq -- node bounds are fixed by assignment; exact == is intentional
		if n.lo[k] == n.hi[k] {
			continue
		}
		val := x[v]
		f := val - math.Floor(val)
		dist := math.Min(f, 1-f)
		if dist <= intTol {
			continue
		}
		var score float64
		switch s.opt.Branching {
		case PseudoCost:
			up := pseudo(s.psUp[k], s.psUpN[k])
			down := pseudo(s.psDown[k], s.psDownN[k])
			score = math.Min(up*(1-f), down*f) + dist*1e-3
		default:
			score = dist
		}
		if score > bestScore {
			bestScore, best = score, k
		}
	}
	return best
}

func pseudo(sum float64, n int) float64 {
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// recordPseudo updates branching history with the bound degradation seen
// after branching variable k in the given direction.
func (s *solver) recordPseudo(k int, up bool, degradation float64) {
	if degradation < 0 {
		degradation = 0
	}
	if up {
		s.psUp[k] += degradation
		s.psUpN[k]++
	} else {
		s.psDown[k] += degradation
		s.psDownN[k]++
	}
}

func (s *solver) result(st Status, bound float64, openLeft int) *Result {
	r := &Result{
		Status:           st,
		Nodes:            s.nodes,
		LPIters:          s.lpIters,
		DualPivots:       s.dualPivots,
		Refactorizations: s.refactors,
	}
	if s.haveInc {
		r.X = s.incumbent
		r.Objective = s.sign * s.incumbentObj
		r.IncumbentSource = "bb"
	}
	if st == StatusDominated {
		r.IncumbentSource = s.extSource
	}
	// Report the proven bound in the original sense.
	if math.IsInf(bound, -1) {
		bound = math.Inf(-1)
	}
	r.BestBound = s.sign * bound
	if s.o.Enabled() {
		s.o.Emit(obs.Event{
			Kind: obs.KindSearchDone, Status: st.String(),
			Obj: r.Objective, Bound: r.BestBound, Gap: r.Gap(),
			Nodes: s.nodes, Iters: s.lpIters,
			DualPivots: s.dualPivots, Refactors: s.refactors,
			Open: openLeft, Pruned: s.prunedN,
			DurUS: time.Since(s.start).Microseconds(),
		})
	}
	return r
}
