package milp

import (
	"math"
	"testing"

	"afp/internal/lp"
)

// extConst adapts a fixed external incumbent to Options.External.
func extConst(obj float64, source string) func() (float64, string, bool) {
	return func() (float64, string, bool) { return obj, source, true }
}

// A worse external incumbent must not change the optimum, and the
// result stays owned by the branch and bound.
func TestExternalWorseKeepsOptimum(t *testing.T) {
	for _, workers := range []int{0, 4} {
		res := solveKnapsack(t, Options{
			Workers:  workers,
			External: extConst(20, "portfolio:anneal"), // knapsack max is 22
		})
		if res.Status != StatusOptimal || math.Abs(res.Objective-22) > 1e-6 {
			t.Fatalf("workers=%d: result = %+v, want optimal 22", workers, res)
		}
		if res.IncumbentSource != "bb" {
			t.Fatalf("workers=%d: incumbent source = %q, want bb", workers, res.IncumbentSource)
		}
	}
}

// A strictly better external incumbent dominates the whole search: the
// solver exhausts under the tighter cutoff, reports StatusDominated with
// the external label, and visits no more nodes than the cold search.
func TestExternalBetterDominates(t *testing.T) {
	cold := solveKnapsack(t, Options{})
	if cold.Status != StatusOptimal {
		t.Fatalf("cold status = %v", cold.Status)
	}
	for _, workers := range []int{0, 4} {
		res := solveKnapsack(t, Options{
			Workers:  workers,
			External: extConst(25, "portfolio:seqpair"), // beats the true max 22
		})
		if res.Status != StatusDominated {
			t.Fatalf("workers=%d: status = %v, want dominated", workers, res.Status)
		}
		if res.IncumbentSource != "portfolio:seqpair" {
			t.Fatalf("workers=%d: incumbent source = %q, want portfolio:seqpair", workers, res.IncumbentSource)
		}
		if res.Nodes > cold.Nodes {
			t.Fatalf("workers=%d: dominated search visited %d nodes, cold search only %d",
				workers, res.Nodes, cold.Nodes)
		}
	}
}

// An external incumbent exactly at the optimum (within AbsGap) also
// dominates: the search cannot strictly beat it, so it concedes rather
// than reproving a known height.
func TestExternalTieDominates(t *testing.T) {
	res := solveKnapsack(t, Options{External: extConst(22, "portfolio:project")})
	if res.Status != StatusDominated {
		t.Fatalf("status = %v, want dominated (external ties the optimum)", res.Status)
	}
}

// On an instance whose cold search branches, an external bound just
// above the optimum must strictly shrink the tree: every node whose LP
// bound cannot beat the external incumbent is cut.
func TestExternalPrunesNodes(t *testing.T) {
	build := func(opt Options) *Result {
		// A 12-item knapsack with correlated weights/values branches well
		// past the root (pure LP rounding is far from integral).
		p := lp.NewProblem()
		p.SetMaximize(true)
		m := NewModel(p)
		weights := []float64{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41}
		var terms []lp.Term
		for i, wt := range weights {
			v := m.AddBinary(string(rune('a'+i)), wt+float64((i*7)%5))
			terms = append(terms, lp.Term{Var: v, Coef: wt})
		}
		p.AddConstraint("cap", terms, lp.LE, 80)
		return Solve(m, opt)
	}
	cold := build(Options{Workers: 1})
	if cold.Status != StatusOptimal || cold.Nodes < 3 {
		t.Fatalf("cold search too easy for this test: %+v", cold)
	}
	warm := build(Options{Workers: 1, External: extConst(cold.Objective + 0.5, "x")})
	if warm.Status != StatusDominated {
		t.Fatalf("warm status = %v", warm.Status)
	}
	if warm.Nodes >= cold.Nodes {
		t.Fatalf("external bound did not prune: warm %d nodes >= cold %d", warm.Nodes, cold.Nodes)
	}
}

func TestStatusDominatedString(t *testing.T) {
	if got := StatusDominated.String(); got != "dominated" {
		t.Fatalf("StatusDominated.String() = %q", got)
	}
}
