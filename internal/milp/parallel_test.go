package milp

import (
	"context"
	"math"
	"testing"
	"time"

	"afp/internal/lp"
	"afp/internal/obs"
)

// parInstances are models whose serial and parallel solves must agree.
func parInstances() map[string]*Model {
	return map[string]*Model{
		"hard16": hardKnapsack(16, 3),
		"hard18": hardKnapsack(18, 5),
		"hard20": hardKnapsack(20, 11),
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for name, m := range parInstances() {
		serial := Solve(m, Options{Workers: 1})
		for _, opt := range []Options{
			{Workers: 4},
			{Workers: 4, ColdStart: true},
			{Workers: 4, Branching: PseudoCost},
			{Workers: 3, RootRounding: true},
		} {
			par := Solve(m, opt)
			if par.Status != serial.Status {
				t.Errorf("%s %+v: status %v, serial %v", name, opt, par.Status, serial.Status)
				continue
			}
			if math.Abs(par.Objective-serial.Objective) > 1e-6 {
				t.Errorf("%s %+v: objective %v, serial %v", name, opt, par.Objective, serial.Objective)
			}
			if par.Status == StatusOptimal && par.Gap() > 1e-6 {
				t.Errorf("%s %+v: optimal with gap %g", name, opt, par.Gap())
			}
			// The proven bound must not claim more than the optimum: for a
			// maximize instance BestBound >= Objective at optimality and the
			// two agree within the gap tolerance.
			if math.Abs(par.BestBound-serial.BestBound) > 1e-6*(1+math.Abs(serial.BestBound)) {
				t.Errorf("%s %+v: bound %v, serial %v", name, opt, par.BestBound, serial.BestBound)
			}
		}
	}
}

func TestParallelWorkersOneIsSerialDeterministic(t *testing.T) {
	// Workers=1 must reproduce the serial search exactly: two runs agree
	// bit for bit in effort counters and the full incumbent vector.
	m := hardKnapsack(16, 9)
	a := Solve(m, Options{Workers: 1})
	b := Solve(m, Options{Workers: 1})
	if a.Nodes != b.Nodes || a.LPIters != b.LPIters {
		t.Fatalf("Workers=1 nondeterministic: nodes %d/%d iters %d/%d", a.Nodes, b.Nodes, a.LPIters, b.LPIters)
	}
	if a.Objective != b.Objective || a.BestBound != b.BestBound {
		t.Fatalf("Workers=1 objective/bound drift: %v/%v vs %v/%v", a.Objective, a.BestBound, b.Objective, b.BestBound)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("Workers=1 incumbent drift at x[%d]: %v vs %v", i, a.X[i], b.X[i])
		}
	}
}

func TestParallelNodeAccounting(t *testing.T) {
	rec := &obs.Recorder{}
	m := hardKnapsack(16, 3)
	res := Solve(m, Options{Workers: 4, Obs: obs.New(rec)})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	checkNodeAccounting(t, rec, res)
	sp, ok := rec.LastKind(obs.KindSearchParallel)
	if !ok {
		t.Fatal("no search.parallel event")
	}
	if sp.Workers != 4 {
		t.Errorf("search.parallel Workers = %d, want 4", sp.Workers)
	}
	if sp.Steals < 0 || sp.IdleUS < 0 {
		t.Errorf("negative steal/idle counters: %+v", sp)
	}
	// Node events from the tree (not the root) must carry a worker id.
	for _, e := range rec.Events() {
		if e.Kind == obs.KindNodeClose && (e.Worker < 1 || e.Worker > 4) {
			t.Fatalf("node.close without worker id: %+v", e)
		}
	}
}

func TestParallelMaxNodes(t *testing.T) {
	rec := &obs.Recorder{}
	res := Solve(hardKnapsack(24, 7), Options{Workers: 4, MaxNodes: 60, Obs: obs.New(rec)})
	if res.Nodes > 60 {
		t.Fatalf("explored %d nodes, limit 60", res.Nodes)
	}
	if res.Status != StatusFeasible && res.Status != StatusLimit {
		t.Fatalf("status = %v, want feasible/limit", res.Status)
	}
	checkNodeAccounting(t, rec, res)
	if res.Status == StatusFeasible {
		// Maximize: the proven bound must sit at or above the incumbent.
		if res.BestBound < res.Objective-1e-6 {
			t.Fatalf("bound %v below incumbent %v", res.BestBound, res.Objective)
		}
		if math.IsInf(res.Gap(), 1) {
			t.Fatalf("feasible result with infinite gap: %+v", res)
		}
	}
}

func TestParallelCancellation(t *testing.T) {
	rec := &obs.Recorder{}
	// hardKnapsack(38, 7) needs ~100k nodes serially, far beyond what any
	// machine explores in 15ms, so the deadline reliably lands mid-search.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	res := SolveCtx(ctx, hardKnapsack(38, 7), Options{Workers: 4, Obs: obs.New(rec)})
	if res.Status != StatusFeasible && res.Status != StatusLimit {
		t.Fatalf("status = %v, want feasible/limit", res.Status)
	}
	checkNodeAccounting(t, rec, res)
	if res.Status == StatusFeasible {
		if res.BestBound < res.Objective-1e-6 {
			t.Fatalf("bound %v below incumbent %v after cancel", res.BestBound, res.Objective)
		}
		if math.IsInf(res.Gap(), 1) {
			t.Fatalf("feasible result with infinite gap after cancel: %+v", res)
		}
	}
}

func TestParallelCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := SolveCtx(ctx, hardKnapsack(20, 1), Options{Workers: 4})
	if res.Status != StatusLimit && res.Status != StatusFeasible {
		t.Fatalf("status = %v, want limit-ish", res.Status)
	}
	if res.Status == StatusLimit && !math.IsInf(res.Gap(), 1) {
		t.Fatalf("gap without incumbent = %g, want +Inf", res.Gap())
	}
}

func TestParallelInfeasible(t *testing.T) {
	// 2x = 1 with x integer has a feasible relaxation but no integer point.
	p := lp.NewProblem()
	m := NewModel(p)
	x := p.AddVariable("x", 0, 5, 1)
	m.MarkInteger(x)
	p.AddConstraint("eq", []lp.Term{{Var: x, Coef: 2}}, lp.EQ, 1)
	res := Solve(m, Options{Workers: 4})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestParallelIncumbentHint(t *testing.T) {
	// Seeding the parallel solve with the known optimum must keep it
	// optimal and can only shrink the tree.
	m := hardKnapsack(16, 3)
	base := Solve(m, Options{Workers: 1})
	hinted := Solve(m, Options{Workers: 4, Incumbent: base.X})
	if hinted.Status != StatusOptimal || math.Abs(hinted.Objective-base.Objective) > 1e-6 {
		t.Fatalf("hinted parallel solve: %+v, want objective %v", hinted, base.Objective)
	}
}

func TestParallelStress(t *testing.T) {
	// Many concurrent solves of the same model exercise the pool, the
	// incumbent lock and Incremental cloning under the race detector.
	m := hardKnapsack(14, 21)
	want := Solve(m, Options{Workers: 1})
	done := make(chan *Result, 6)
	for i := 0; i < 6; i++ {
		cold := i%2 == 0
		go func() { done <- Solve(m, Options{Workers: 4, ColdStart: cold}) }()
	}
	for i := 0; i < 6; i++ {
		res := <-done
		if res.Status != StatusOptimal || math.Abs(res.Objective-want.Objective) > 1e-6 {
			t.Fatalf("concurrent parallel solve diverged: %+v, want %v", res, want.Objective)
		}
	}
}
