package milp

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"time"

	"afp/internal/lp"
	"afp/internal/obs"
)

// The parallel branch and bound (Options.Workers > 1) keeps the serial
// solver's node semantics — every popped node still ends in exactly one
// close or prune event, so the opened == closed + pruned + open trace
// invariant holds — but distributes subtrees across worker goroutines:
//
//   - a shared best-bound min-heap holds nodes available to any worker;
//   - each worker dives: after branching it keeps the nearer child and
//     publishes the sibling to the pool, so the pool fills with the
//     frontier of abandoned siblings ordered by how promising they are;
//   - pulling a node another worker created counts as a steal;
//   - the incumbent is shared under the pool mutex, so every worker
//     prunes against the global best;
//   - on any exit (exhaustion, node/time limit, ctx cancellation) each
//     worker returns its unprocessed dive node to the pool and the bound
//     of any LP aborted mid-solve is folded in, so the reported
//     BestBound is proven exactly as in the serial search.
//
// Workers=1 never reaches this file: SolveCtx dispatches here only for
// Workers > 1, keeping the serial path bit-for-bit unchanged.

// nodeHeap orders open nodes by parent bound (minimize sense), ties by
// creation id so the pop order is stable for a given interleaving.
type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	//vet:allow toleq -- exact tie keeps the heap order total and deterministic
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return n
}

// psolver is the state shared by all workers of one parallel solve.
type psolver struct {
	m        *Model
	opt      Options
	ctx      context.Context
	sign     float64
	deadline time.Time
	workers  int

	o        *obs.Observer
	start    time.Time
	probeGap int

	mu            sync.Mutex
	cond          *sync.Cond
	pool          nodeHeap // guarded by mu
	idle          int      // guarded by mu
	stopped       bool     // guarded by mu; drain: limit, cancellation, exhaustion or root unbounded
	hitLimit      bool     // guarded by mu; stop was a limit/cancellation, not exhaustion
	rootUnbounded bool     // guarded by mu
	abortFold     float64  // guarded by mu; min bound over nodes whose LP was aborted mid-solve

	incumbent    []float64 // guarded by mu
	incumbentObj float64   // guarded by mu; minimize sense
	haveInc      bool      // guarded by mu

	extObj    float64 // guarded by mu; best external objective seen (minimize sense)
	extSource string  // guarded by mu
	haveExt   bool    // guarded by mu

	nodes      int   // guarded by mu
	lpIters    int   // guarded by mu
	dualPivots int   // guarded by mu
	refactors  int   // guarded by mu
	pushed     int   // guarded by mu
	prunedN    int   // guarded by mu
	steals     int   // guarded by mu
	idleUS     int64 // guarded by mu

	psUp, psDown   []float64 // guarded by mu
	psUpN, psDownN []int     // guarded by mu
}

// pworker is one worker goroutine's private solver assets: a problem
// clone or a cloned warm-start basis, never shared with other workers.
type pworker struct {
	ps   *psolver
	id   int             // 1-based
	ctx  context.Context // carries the worker's span; LP solves link to it
	work *lp.Problem     // cold path: private clone whose bounds we mutate
	inc  *lp.Incremental // warm path: private basis over a shared immutable problem
}

func solveParallel(ctx context.Context, m *Model, opt Options, workers int) *Result {
	ps := &psolver{
		m:            m,
		opt:          opt,
		ctx:          ctx,
		sign:         1,
		workers:      workers,
		o:            opt.Obs,
		start:        time.Now(),
		probeGap:     opt.ProgressEvery,
		abortFold:    math.Inf(1),
		incumbentObj: math.Inf(1),
		psUp:         make([]float64, len(m.Ints)),
		psDown:       make([]float64, len(m.Ints)),
		psUpN:        make([]int, len(m.Ints)),
		psDownN:      make([]int, len(m.Ints)),
	}
	ps.cond = sync.NewCond(&ps.mu)
	if m.P.Maximizing() {
		ps.sign = -1
	}
	if opt.TimeLimit > 0 {
		ps.deadline = time.Now().Add(opt.TimeLimit)
	}

	rootLo := make([]float64, len(m.Ints))
	rootHi := make([]float64, len(m.Ints))
	for k, v := range m.Ints {
		lo, hi := m.P.Bounds(v)
		rootLo[k] = math.Ceil(lo - intTol)
		rootHi[k] = math.Floor(hi + intTol)
	}

	// Private LP assets per worker. With warm start, one pristine basis is
	// built over a single work clone and every other worker receives a
	// Clone() of it BEFORE anything (incumbent hint, root solve) mutates
	// the prototype — after that the bases never touch shared mutable
	// state. Cold workers each own a full problem clone instead.
	base := m.P.Clone()
	var proto *lp.Incremental
	if !opt.ColdStart {
		if inc, err := lp.NewIncremental(base, opt.LP); err == nil {
			proto = inc
		}
	}
	pws := make([]*pworker, workers)
	for i := range pws {
		pw := &pworker{ps: ps, id: i + 1, ctx: ctx}
		switch {
		case proto != nil && i == 0:
			pw.inc = proto
		case proto != nil:
			pw.inc = proto.Clone()
		case i == 0:
			pw.work = base
		default:
			pw.work = m.P.Clone()
		}
		pws[i] = pw
	}

	if opt.Incumbent != nil {
		pws[0].tryHint(opt.Incumbent, rootLo, rootHi)
	}

	root := &node{lo: rootLo, hi: rootHi, bound: math.Inf(-1), branchVar: -1}
	ps.mu.Lock()
	ps.pushed++
	root.id = ps.pushed
	heap.Push(&ps.pool, root)
	ps.mu.Unlock()
	if ps.o.Enabled() {
		ps.o.Emit(obs.Event{
			Kind: obs.KindNodeOpen, Node: root.id, Depth: 0,
			Bound: ps.sign * root.bound, BranchVar: -1,
		})
	}

	var wg sync.WaitGroup
	for _, pw := range pws {
		wg.Add(1)
		go func(pw *pworker) {
			defer wg.Done()
			ps.o.Do(ctx, "bb.worker", obs.SpanAttrs{Worker: pw.id}, func(ctx context.Context) {
				pw.ctx = ctx
				pw.run(rootLo, rootHi)
			})
		}(pw)
	}
	wg.Wait()
	return ps.result()
}

func (ps *psolver) timeUp() bool {
	if ps.ctx.Err() != nil {
		return true
	}
	return !ps.deadline.IsZero() && time.Now().After(ps.deadline)
}

// stopLocked flags the drain and wakes every waiter.
//
// locked: ps.mu
func (ps *psolver) stopLocked() {
	ps.stopped = true
	ps.cond.Broadcast()
}

// next hands the worker its next node: the dive child it kept from its
// last branch when there is one, otherwise the best-bound node of the
// shared pool, blocking while the pool is empty but other workers may
// still publish. It returns nil when the search is over — pool drained
// with all workers idle, a limit hit, or the context cancelled — after
// returning any unprocessed dive node to the pool so the open count and
// the folded bound stay exact. Pool nodes that the shared incumbent
// already dominates are pruned here, before any LP is paid for.
func (ps *psolver) next(worker int, local *node) *node {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for {
		if ps.stopped {
			if local != nil {
				heap.Push(&ps.pool, local)
			}
			return nil
		}
		if ps.nodes >= ps.opt.MaxNodes || ps.timeUp() {
			ps.hitLimit = true
			ps.stopLocked()
			if local != nil {
				heap.Push(&ps.pool, local)
			}
			return nil
		}
		var n *node
		switch {
		case local != nil:
			n, local = local, nil
		case len(ps.pool) > 0:
			n = heap.Pop(&ps.pool).(*node)
		default:
			ps.idle++
			if ps.idle == ps.workers {
				// Nothing open anywhere and nobody working: exhausted.
				ps.stopLocked()
				return nil
			}
			t0 := time.Now()
			ps.cond.Wait()
			ps.idleUS += time.Since(t0).Microseconds()
			ps.idle--
			continue
		}
		ps.pollExternalLocked()
		if cut, ok := ps.cutoffLocked(); ok && n.bound >= cut-ps.opt.AbsGap {
			ps.prunedN++
			if ps.o.Enabled() {
				ps.o.Emit(obs.Event{
					Kind: obs.KindNodePrune, Node: n.id, Depth: n.depth,
					Bound: ps.sign * n.bound, Worker: worker,
				})
			}
			continue
		}
		ps.nodes++
		if n.owner != 0 && n.owner != worker {
			ps.steals++
		}
		if ps.o.Enabled() && ps.nodes%ps.probeGap == 0 {
			ps.emitProgressLocked(n.bound)
		}
		return n
	}
}

// emitProgressLocked mirrors the serial probe. Emitting while ps.mu is
// held orders the pool lock ahead of every observer sink mutex; the
// sinks are leaves that take no further locks, and they are reached
// through the obs.Sink interface, which the static lock graph cannot
// trace — so the orderings are declared:
//
// lockorder: milp.psolver.mu -> obs.JSONLWriter.mu -- solver events are emitted while the pool lock is held; the JSONL sink locks to encode
// lockorder: milp.psolver.mu -> obs.Recorder.mu -- solver events are emitted while the pool lock is held; the recorder locks to append
// lockorder: milp.psolver.mu -> obs.LogSink.mu -- solver events are emitted while the pool lock is held; the log sink locks to write
// lockorder: milp.psolver.mu -> obs.Metrics.mu -- the metrics sink folds events emitted under the pool lock into histograms
//
// locked: ps.mu
func (ps *psolver) emitProgressLocked(curBound float64) {
	lb := math.Min(minOpenBound(ps.pool), curBound)
	e := obs.Event{
		Kind: obs.KindProgress, Nodes: ps.nodes, Open: len(ps.pool),
		Iters: ps.lpIters, Bound: ps.sign * lb,
	}
	if ps.haveInc {
		e.Obj = ps.sign * ps.incumbentObj
		e.Gap = relGap(ps.incumbentObj, lb)
	} else {
		e.Gap = math.Inf(1)
	}
	ps.o.Emit(e)
}

func (ps *psolver) emitClose(worker int, n *node, detail string, obj float64) {
	if ps.o.Enabled() {
		ps.o.Emit(obs.Event{
			Kind: obs.KindNodeClose, Node: n.id, Depth: n.depth,
			Detail: detail, Obj: ps.sign * obj, Worker: worker,
		})
	}
}

// openTwo assigns creation ids to a branch's children (down first, as in
// the serial search) and reports them.
func (ps *psolver) openTwo(worker int, down, up *node) {
	ps.mu.Lock()
	ps.pushed++
	down.id = ps.pushed
	ps.pushed++
	up.id = ps.pushed
	ps.mu.Unlock()
	if ps.o.Enabled() {
		for _, n := range [2]*node{down, up} {
			ps.o.Emit(obs.Event{
				Kind: obs.KindNodeOpen, Node: n.id, Depth: n.depth,
				Bound: ps.sign * n.bound, BranchVar: n.branchVar, Worker: worker,
			})
		}
	}
}

// share publishes a node to the pool and wakes one idle worker.
func (ps *psolver) share(n *node) {
	ps.mu.Lock()
	heap.Push(&ps.pool, n)
	ps.mu.Unlock()
	ps.cond.Signal()
}

func (ps *psolver) incumbentSnapshot() (float64, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.incumbentObj, ps.haveInc
}

// pollExternalLocked refreshes the externally-shared incumbent. The
// External hook is called with ps.mu held; by contract it only takes
// locks that never wait on a branch-and-bound worker (the portfolio
// board's mutex). The hook is a function value the static lock graph
// cannot trace, so the ordering is declared:
//
// lockorder: milp.psolver.mu -> portfolio.Board.mu -- Options.External polls the board's verified incumbent while the pool lock is held
//
// locked: ps.mu
func (ps *psolver) pollExternalLocked() {
	if ps.opt.External == nil {
		return
	}
	if obj, src, ok := ps.opt.External(); ok {
		v := ps.sign * obj
		if !ps.haveExt || v < ps.extObj {
			ps.extObj, ps.extSource, ps.haveExt = v, src, true
		}
	}
}

// cutoffLocked mirrors the serial cutoff: min(incumbent, external).
//
// locked: ps.mu
func (ps *psolver) cutoffLocked() (float64, bool) {
	switch {
	case ps.haveInc && ps.haveExt:
		return math.Min(ps.incumbentObj, ps.extObj), true
	case ps.haveInc:
		return ps.incumbentObj, true
	case ps.haveExt:
		return ps.extObj, true
	}
	return 0, false
}

// cutoffSnapshot polls the external hook and returns the current cutoff.
func (ps *psolver) cutoffSnapshot() (float64, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.pollExternalLocked()
	return ps.cutoffLocked()
}

// publishIncumbent installs a strictly better incumbent under the lock
// and reports it. n is nil for incumbents from hints and dives.
func (ps *psolver) publishIncumbent(worker int, n *node, x []float64, obj float64) {
	ps.mu.Lock()
	if ps.haveInc && obj >= ps.incumbentObj {
		ps.mu.Unlock()
		return
	}
	ps.incumbent = append([]float64(nil), x...)
	ps.incumbentObj = obj
	ps.haveInc = true
	nodes := ps.nodes
	ps.mu.Unlock()
	if ps.o.Enabled() {
		e := obs.Event{Kind: obs.KindIncumbent, Obj: ps.sign * obj, Nodes: nodes, Worker: worker}
		if n != nil {
			e.Node = n.id
			e.Depth = n.depth
		}
		ps.o.Emit(e)
	}
}

func (ps *psolver) recordPseudo(k int, up bool, degradation float64) {
	if degradation < 0 {
		degradation = 0
	}
	ps.mu.Lock()
	if up {
		ps.psUp[k] += degradation
		ps.psUpN[k]++
	} else {
		ps.psDown[k] += degradation
		ps.psDownN[k]++
	}
	ps.mu.Unlock()
}

// pickBranchVar is the serial rule over the shared pseudo-cost history.
func (ps *psolver) pickBranchVar(x []float64, n *node) int {
	if ps.opt.Branching == PseudoCost {
		ps.mu.Lock()
		defer ps.mu.Unlock()
	}
	best := -1
	bestScore := intTol
	for k, v := range ps.m.Ints {
		//vet:allow toleq -- node bounds are fixed by assignment; exact == is intentional
		if n.lo[k] == n.hi[k] {
			continue
		}
		val := x[v]
		f := val - math.Floor(val)
		dist := math.Min(f, 1-f)
		if dist <= intTol {
			continue
		}
		var score float64
		switch ps.opt.Branching {
		case PseudoCost:
			up := pseudo(ps.psUp[k], ps.psUpN[k])
			down := pseudo(ps.psDown[k], ps.psDownN[k])
			score = math.Min(up*(1-f), down*f) + dist*1e-3
		default:
			score = dist
		}
		if score > bestScore {
			bestScore, best = score, k
		}
	}
	return best
}

// run is one worker's loop: take a node, process it, dive on the child
// it kept, until next reports the search over.
func (pw *pworker) run(rootLo, rootHi []float64) {
	var local *node
	for {
		n := pw.ps.next(pw.id, local)
		if n == nil {
			return
		}
		local = pw.process(n, rootLo, rootHi)
	}
}

func (pw *pworker) setIntBounds(n *node) {
	if pw.inc != nil {
		for k, v := range pw.ps.m.Ints {
			pw.inc.SetBounds(v, n.lo[k], n.hi[k])
		}
		return
	}
	for k, v := range pw.ps.m.Ints {
		pw.work.SetBounds(v, n.lo[k], n.hi[k])
	}
}

// solveLP solves this worker's private relaxation. On the warm path the
// returned Solution is the worker's reused buffer — private to the
// worker, but only valid until its next solveLP call.
func (pw *pworker) solveLP() (*lp.Solution, float64) {
	var sol *lp.Solution
	var err error
	if pw.inc != nil {
		sol, err = pw.inc.SolveCtxReuse(pw.ctx)
	} else {
		sol, err = pw.work.SolveCtx(pw.ctx, pw.ps.opt.LP)
	}
	if err != nil {
		return nil, math.Inf(1)
	}
	pw.ps.mu.Lock()
	pw.ps.lpIters += sol.Iterations
	pw.ps.dualPivots += sol.DualPivots
	pw.ps.refactors += sol.Refactorizations
	pw.ps.mu.Unlock()
	return sol, pw.ps.sign * sol.Objective
}

// tryHint fixes integers to the hint's rounded values, re-optimizes the
// continuous part on this worker's private LP and publishes the result.
func (pw *pworker) tryHint(hint []float64, rootLo, rootHi []float64) {
	ps := pw.ps
	n := &node{lo: cloneF(rootLo), hi: cloneF(rootHi)}
	for k, v := range ps.m.Ints {
		val := math.Round(hint[v])
		if val < rootLo[k]-intTol || val > rootHi[k]+intTol {
			return
		}
		n.lo[k], n.hi[k] = val, val
	}
	pw.setIntBounds(n)
	sol, obj := pw.solveLP()
	if sol != nil && sol.Status == lp.StatusOptimal {
		ps.publishIncumbent(pw.id, nil, sol.X, obj)
	}
}

// process explores one node exactly as the serial loop does and returns
// the dive child this worker keeps, or nil when the node closed.
func (pw *pworker) process(n *node, rootLo, rootHi []float64) *node {
	ps := pw.ps
	pw.setIntBounds(n)
	sol, obj := pw.solveLP()
	if sol == nil {
		if ps.timeUp() {
			// Cancellation aborted this node's LP mid-solve: its parent
			// bound is unexplored mass, fold it into the proven bound.
			ps.emitClose(pw.id, n, "cancelled", n.bound)
			ps.mu.Lock()
			ps.hitLimit = true
			if n.bound < ps.abortFold {
				ps.abortFold = n.bound
			}
			ps.stopLocked()
			ps.mu.Unlock()
			return nil
		}
		ps.emitClose(pw.id, n, "lperror", n.bound)
		return nil
	}
	switch sol.Status {
	case lp.StatusInfeasible:
		ps.emitClose(pw.id, n, "infeasible", n.bound)
		return nil
	case lp.StatusUnbounded:
		ps.emitClose(pw.id, n, "unbounded", n.bound)
		if n.id == 1 {
			ps.mu.Lock()
			ps.rootUnbounded = true
			ps.stopLocked()
			ps.mu.Unlock()
		}
		return nil
	case lp.StatusIterLimit:
		// Bound untrusted; treat as the parent's and branch on the guess.
		obj = n.bound
	}
	if n.branchVar >= 0 && !math.IsInf(n.bound, -1) {
		ps.recordPseudo(n.branchVar, n.branchUp, obj-n.bound)
	}
	if cut, have := ps.cutoffSnapshot(); have && obj >= cut-ps.opt.AbsGap {
		ps.emitClose(pw.id, n, "bound", obj)
		return nil
	}

	frac := ps.pickBranchVar(sol.X, n)
	if frac < 0 {
		ps.publishIncumbent(pw.id, n, sol.X, obj)
		ps.emitClose(pw.id, n, "integer", obj)
		return nil
	}

	// Capture the branch value before the rounding dive: the hint's
	// re-solve overwrites the warm solver's reused X buffer.
	x := sol.X[ps.m.Ints[frac]]
	if n.id == 1 && ps.opt.RootRounding {
		pw.tryHint(sol.X, rootLo, rootHi)
	}
	fl := math.Floor(x)
	down := &node{lo: cloneF(n.lo), hi: cloneF(n.hi), bound: obj, depth: n.depth + 1, branchVar: frac, owner: pw.id}
	down.hi[frac] = fl
	up := &node{lo: cloneF(n.lo), hi: cloneF(n.hi), bound: obj, depth: n.depth + 1, branchVar: frac, branchUp: true, owner: pw.id}
	up.lo[frac] = fl + 1
	ps.emitClose(pw.id, n, "branched", obj)
	ps.openTwo(pw.id, down, up)

	// Dive toward the nearest integer; the sibling feeds the pool.
	near, far := down, up
	if x-fl >= 0.5 {
		near, far = up, down
	}
	ps.share(far)
	return near
}

// result folds the pool minimum with any aborted in-flight bounds into
// the proven bound and assembles the Result exactly as the serial path.
// It runs after wg.Wait(), so the lock is uncontended; taking it anyway
// keeps every read of shared state under ps.mu and pairs the final
// events with the same ordering emitProgressLocked established.
func (ps *psolver) result() *Result {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	openLeft := len(ps.pool)
	var st Status
	var bound float64
	switch {
	case ps.rootUnbounded:
		st = StatusUnbounded
		bound = math.Inf(-1)
	case ps.hitLimit:
		bound = math.Min(minOpenBound(ps.pool), ps.abortFold)
		if ps.haveInc {
			st = StatusFeasible
			if math.IsInf(bound, 1) {
				// Every open node was closed before the stop took effect:
				// the incumbent is actually proven.
				bound = ps.incumbentObj
			}
		} else {
			st = StatusLimit
			if math.IsInf(bound, 1) {
				bound = math.Inf(-1)
			}
		}
	case ps.haveExt && (!ps.haveInc || ps.extObj < ps.incumbentObj):
		// Exhausted under an external cutoff tighter than anything found
		// here: the external solution dominates this model (serial logic).
		st = StatusDominated
		bound = ps.extObj
	case ps.haveInc:
		st = StatusOptimal
		bound = ps.incumbentObj
	default:
		st = StatusInfeasible
		bound = math.Inf(-1)
	}

	r := &Result{
		Status: st, Nodes: ps.nodes, LPIters: ps.lpIters,
		DualPivots: ps.dualPivots, Refactorizations: ps.refactors,
	}
	if ps.haveInc {
		r.X = ps.incumbent
		r.Objective = ps.sign * ps.incumbentObj
		r.IncumbentSource = "bb"
	}
	if st == StatusDominated {
		r.IncumbentSource = ps.extSource
	}
	r.BestBound = ps.sign * bound
	if ps.o.Enabled() {
		ps.o.Emit(obs.Event{
			Kind: obs.KindSearchParallel, Workers: ps.workers,
			Steals: ps.steals, IdleUS: ps.idleUS,
		})
		ps.o.Emit(obs.Event{
			Kind: obs.KindSearchDone, Status: st.String(),
			Obj: r.Objective, Bound: r.BestBound, Gap: r.Gap(),
			Nodes: ps.nodes, Iters: ps.lpIters,
			DualPivots: ps.dualPivots, Refactors: ps.refactors,
			Open: openLeft, Pruned: ps.prunedN,
			DurUS: time.Since(ps.start).Microseconds(),
		})
	}
	return r
}
