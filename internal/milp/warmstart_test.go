package milp

import (
	"math"
	"testing"

	"afp/internal/lp"
)

// Warm-started branch and bound (the default) must reach the same
// optima as the forced-cold path on the brute-force-checked knapsack.
func TestWarmStartKnapsack(t *testing.T) {
	res := solveKnapsack(t, Options{})
	if res.Status != StatusOptimal || math.Abs(res.Objective-22) > 1e-6 {
		t.Fatalf("warm-start result = %+v", res)
	}
	if res.DualPivots == 0 {
		t.Fatalf("warm search reported no dual pivots: %+v", res)
	}
	cold := solveKnapsack(t, Options{ColdStart: true})
	if cold.Status != StatusOptimal || math.Abs(cold.Objective-22) > 1e-6 {
		t.Fatalf("cold-start result = %+v", cold)
	}
}

// Warm start falls back to cold solves when a column has no finite
// improving bound, still detecting unboundedness.
func TestWarmStartFallsBackOnUnboundedColumns(t *testing.T) {
	p := lp.NewProblem()
	m := NewModel(p)
	p.AddVariable("x", 0, math.Inf(1), -1)
	z := m.AddBinary("z", 0)
	p.AddConstraint("link", []lp.Term{{Var: z, Coef: 1}}, lp.LE, 1)
	res := Solve(m, Options{})
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

// Equivalence of warm and cold optima over the placement disjunction.
func TestWarmStartPlacementDisjunction(t *testing.T) {
	build := func() *Model {
		p := lp.NewProblem()
		m := NewModel(p)
		const W, H = 2.0, 4.0
		x1 := p.AddVariable("x1", 0, W-1, 0)
		x2 := p.AddVariable("x2", 0, W-1, 0)
		y1 := p.AddVariable("y1", 0, H, 0)
		y2 := p.AddVariable("y2", 0, H, 0)
		h := p.AddVariable("h", 0, H, 1)
		zx := m.AddBinary("zx", 0)
		zy := m.AddBinary("zy", 0)
		p.AddConstraint("left", []lp.Term{{Var: x1, Coef: 1}, {Var: x2, Coef: -1}, {Var: zx, Coef: -W}, {Var: zy, Coef: -W}}, lp.LE, -1)
		p.AddConstraint("right", []lp.Term{{Var: x2, Coef: 1}, {Var: x1, Coef: -1}, {Var: zx, Coef: -W}, {Var: zy, Coef: W}}, lp.LE, W-1)
		p.AddConstraint("below", []lp.Term{{Var: y1, Coef: 1}, {Var: y2, Coef: -1}, {Var: zx, Coef: H}, {Var: zy, Coef: -H}}, lp.LE, H-1)
		p.AddConstraint("above", []lp.Term{{Var: y2, Coef: 1}, {Var: y1, Coef: -1}, {Var: zx, Coef: H}, {Var: zy, Coef: H}}, lp.LE, 2*H-1)
		p.AddConstraint("h1", []lp.Term{{Var: h, Coef: 1}, {Var: y1, Coef: -1}}, lp.GE, 1)
		p.AddConstraint("h2", []lp.Term{{Var: h, Coef: 1}, {Var: y2, Coef: -1}}, lp.GE, 1)
		return m
	}
	cold := Solve(build(), Options{ColdStart: true})
	warm := Solve(build(), Options{})
	if cold.Status != StatusOptimal || warm.Status != StatusOptimal {
		t.Fatalf("statuses %v / %v", cold.Status, warm.Status)
	}
	if math.Abs(cold.Objective-warm.Objective) > 1e-6 {
		t.Fatalf("cold %v != warm %v", cold.Objective, warm.Objective)
	}
}
