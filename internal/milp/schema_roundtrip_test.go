package milp

import (
	"testing"

	"afp/internal/lp"
	"afp/internal/obs"
)

// TestRecordedEventsMatchSchema runs observed serial and parallel solves
// and round-trips every recorded event through the generated registry:
// any emit site drifting from schema.go (a new field, a renamed kind)
// fails here and in the obsevent analyzer alike.
func TestRecordedEventsMatchSchema(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"serial", Options{Workers: 1, Presolve: true, RootRounding: true}},
		{"parallel", Options{Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := &obs.Recorder{}
			o := obs.New(rec)
			tc.opt.Obs = o
			tc.opt.LP = lp.Options{Obs: o}
			solveKnapsack(t, tc.opt)
			events := rec.Events()
			if len(events) == 0 {
				t.Fatal("no events recorded")
			}
			for _, e := range events {
				if err := obs.ValidateEvent(e); err != nil {
					t.Errorf("recorded event fails schema: %v", err)
				}
			}
		})
	}
}
